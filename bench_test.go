// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VII) at laptop scale, plus ablations of the design choices
// called out in DESIGN.md §6. cmd/pem-bench prints the full series at
// paper scale; these benches measure the same code paths under `go test
// -bench`. Scale factors are deliberately small so the whole suite
// completes in minutes — EXPERIMENTS.md records the paper-scale numbers.
package pem_test

import (
	"context"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"

	"github.com/pem-go/pem"
	"github.com/pem-go/pem/internal/paillier"
)

// benchTrace memoizes one synthetic day per (homes, windows).
var benchTraces = map[string]*pem.Trace{}

func benchTrace(b *testing.B, homes, windows int) *pem.Trace {
	b.Helper()
	key := fmt.Sprintf("%d/%d", homes, windows)
	if tr, ok := benchTraces[key]; ok {
		return tr
	}
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: homes, Windows: windows, Seed: 20200425})
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[key] = tr
	return tr
}

// --- Fig. 4: coalition sizes vs trading windows (200 homes, 720 windows) ---

func BenchmarkFig4CoalitionSizes(b *testing.B) {
	tr := benchTrace(b, 200, 720)
	params := pem.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := pem.SimulateDay(tr, params)
		if err != nil {
			b.Fatal(err)
		}
		var peakSellers int
		for _, s := range ds.SellerCount {
			if s > peakSellers {
				peakSellers = s
			}
		}
		b.ReportMetric(float64(peakSellers), "peak-sellers")
	}
}

// --- Fig. 5(a): average runtime per window vs number of agents ---
//
// The paper fixes 2048-bit keys and sweeps n ∈ {100, 200, 300}; here the
// sweep is n ∈ {8, 16, 24} at 512 bits so the bench stays in seconds.
// cmd/pem-bench -fig 5a -full runs the paper scale.

func BenchmarkFig5aRuntimePerWindow(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("agents=%d", n), func(b *testing.B) {
			benchPrivateWindows(b, n, 512)
		})
	}
}

// --- Fig. 5(b): runtime vs key size (pre-encryption hides the key cost) ---

func BenchmarkFig5bRuntimeByKeySize(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048} {
		b.Run(fmt.Sprintf("key=%d", bits), func(b *testing.B) {
			benchPrivateWindows(b, 8, bits)
		})
	}
}

// --- Fig. 5(c): runtime vs agents at several key sizes ---

func BenchmarkFig5cRuntimeByAgents(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		for _, n := range []int{8, 16} {
			b.Run(fmt.Sprintf("key=%d/agents=%d", bits, n), func(b *testing.B) {
				benchPrivateWindows(b, n, bits)
			})
		}
	}
}

// benchPrivateWindows measures full private trading windows.
func benchPrivateWindows(b *testing.B, agents, keyBits int) {
	b.Helper()
	tr := benchTrace(b, agents, 720)
	seed := int64(7)
	m, err := pem.NewMarket(pem.Config{KeyBits: keyBits, Seed: &seed}, tr.Agents())
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()

	// Midday window: both coalitions populated.
	inputs, err := tr.WindowInputs(tr.Windows / 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunWindow(ctx, i, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipelined window scheduler: sequential vs concurrent windows ---
//
// The paper executes one trading window at a time; the scheduler overlaps
// up to MaxInflightWindows independent protocol instances. Each window's
// ring aggregations serialize its parties, so a single window cannot
// saturate a multi-core host — pipelining recovers that idle time. On a
// multi-core machine inflight=4 runs the same day at least 2x faster than
// inflight=1; outcomes are bit-identical at any depth (asserted by
// TestRunWindowsPipelinedBitIdentical).

func BenchmarkPipelinedDay(b *testing.B) {
	tr := benchTrace(b, 8, 720)
	// A slice of midday windows: both coalitions populated, full protocol
	// stack per window.
	const windows = 8
	inputs := make([][]pem.WindowInput, windows)
	for w := 0; w < windows; w++ {
		var err error
		if inputs[w], err = tr.WindowInputs(720/2 - windows/2 + w); err != nil {
			b.Fatal(err)
		}
	}
	for _, inflight := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			seed := int64(15)
			m, err := pem.NewMarket(pem.Config{
				KeyBits:            512,
				Seed:               &seed,
				MaxInflightWindows: inflight,
			}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindows(ctx, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(windows), "windows/op")
		})
	}
}

// --- Sharded coalition grid: coalition-count sweep ---
//
// Pipelining overlaps windows of one market; the grid overlaps whole
// coalition markets: the fleet is partitioned into k coalitions that trade
// concurrently over one shared bus and one bounded crypto pool, and their
// residuals settle against the grid. Aggregate windows/sec scales with the
// coalition count — the single-roster ring serializes its parties, while k
// small rings run k windows at once. Outcomes per coalition are
// bit-identical at any coalition concurrency (asserted by
// TestGridBitIdenticalAcrossConcurrency).

func BenchmarkCoalitionGrid(b *testing.B) {
	fleet, err := pem.GenerateFleet(pem.FleetConfig{
		Coalitions:        4,
		HomesPerCoalition: 4,
		Windows:           2,
		Seed:              20200425,
		StartHour:         11,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, coalitions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("coalitions=%d", coalitions), func(b *testing.B) {
			seed := int64(15)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			var perSec float64
			for i := 0; i < b.N; i++ {
				g, err := pem.NewGrid(pem.GridConfig{
					Market:                  pem.Config{KeyBits: 512, Seed: &seed},
					Coalitions:              coalitions,
					Partition:               pem.PartitionBalanced,
					MaxConcurrentCoalitions: coalitions,
				}, fleet)
				if err != nil {
					b.Fatal(err)
				}
				res, err := g.Run(ctx)
				if err != nil {
					b.Fatal(err)
				}
				perSec = res.WindowsPerSec
			}
			b.ReportMetric(perSec, "windows/sec")
		})
	}
}

// BenchmarkLiveGrid measures the epoched live grid under churn: several
// consecutive trading days over one evolving fleet, with per-epoch
// re-partitioning and coalition re-keying over the shared crypto pool. The
// reported windows/sec is steady-state throughput (re-key time excluded);
// rekey-ms/epoch surfaces the churn cost separately.
func BenchmarkLiveGrid(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	var res *pem.LiveGridResult
	for i := 0; i < b.N; i++ {
		seed := int64(15)
		lg, err := pem.NewLiveGrid(pem.LiveGridConfig{
			Market:     pem.Config{KeyBits: 512, Seed: &seed},
			Coalitions: 2,
			Partition:  pem.PartitionBalanced,
			Epochs:     3,
			Churn:      pem.ChurnConfig{JoinRate: 0.25, DepartRate: 0.15, FailRate: 0.1},
		}, pem.FleetConfig{
			Coalitions:        2,
			HomesPerCoalition: 4,
			Windows:           2,
			Seed:              20200425,
			StartHour:         11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res, err = lg.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WindowsPerSec, "windows/sec")
	b.ReportMetric(float64(res.Rekey.Milliseconds())/float64(len(res.Epochs)), "rekey-ms/epoch")
}

// --- Network emulation: communication cost on virtual WAN links ---
//
// BenchmarkNetEm runs the full protocol window over the deterministic
// network-emulation layer. The virtual clock is event-driven — no
// wall-clock sleeps — so the wan and cellular cases run at the same real
// speed as lan while reporting seconds of virtual critical-path latency;
// virt-ms/window and rounds surface both. Tree aggregation cuts the round
// count on every topology (asserted by TestTreeBeatsRingOnWAN in
// internal/core).
func BenchmarkNetEm(b *testing.B) {
	for _, network := range []string{pem.NetworkLAN, pem.NetworkWAN, pem.NetworkCellular} {
		for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
			b.Run(fmt.Sprintf("net=%s/agg=%s", network, agg), func(b *testing.B) {
				tr := benchTrace(b, 12, 720)
				seed := int64(23)
				m, err := pem.NewMarket(pem.Config{
					KeyBits:     512,
					Seed:        &seed,
					Aggregation: agg,
					Network:     network,
				}, tr.Agents())
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				ctx := context.Background()
				inputs, err := tr.WindowInputs(tr.Windows / 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var res *pem.WindowResult
				for i := 0; i < b.N; i++ {
					if res, err = m.RunWindow(ctx, i, inputs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.VirtualLatency.Milliseconds()), "virt-ms/window")
				b.ReportMetric(float64(res.Rounds), "rounds")
				b.ReportMetric(float64(res.Messages), "msgs/window")
			})
		}
	}
}

// --- Intra-window parallel crypto engine: worker-count sweep ---
//
// Pipelining (above) overlaps whole windows; the parallel engine speeds up
// a single window: Hs drains the Protocol 4 masked ciphertexts in arrival
// order and decrypts them across the shared worker pool, broadcasts fan
// out concurrently, and the pairwise routeAndPay exchanges run per peer.
// On a multi-core host the 32-agent window runs ≥ 2x faster at 8 crypto
// workers than at 1; outcomes are bit-identical at any worker count
// (asserted by TestRunWindowParallelCryptoBitIdentical).

func BenchmarkParallelWindow(b *testing.B) {
	for _, agents := range []int{8, 16, 32, 64} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("agents=%d/workers=%d", agents, workers), func(b *testing.B) {
				tr := benchTrace(b, agents, 720)
				seed := int64(17)
				m, err := pem.NewMarket(pem.Config{
					KeyBits:       512,
					Seed:          &seed,
					CryptoWorkers: workers,
				}, tr.Agents())
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				ctx := context.Background()
				inputs, err := tr.WindowInputs(tr.Windows / 2)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.RunWindow(ctx, i, inputs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation: paillier vs hybrid crypto backend, full protocol stack ---
//
// The hybrid backend computes the Protocol 2/3 aggregations and comparison
// over seeded additive masking and keeps Paillier only for Protocol 4's
// ratio step; outcomes are bit-identical to the paillier backend (asserted
// by TestHybridPublicBitIdentical). The per-window speedup is the headline
// of cmd/pem-bench -fig crypto; this bench keeps it measurable under
// `go test -bench`.

func BenchmarkCryptoBackends(b *testing.B) {
	for _, backend := range []string{pem.BackendPaillier, pem.BackendHybrid} {
		b.Run("backend="+backend, func(b *testing.B) {
			tr := benchTrace(b, 8, 720)
			seed := int64(21)
			m, err := pem.NewMarket(pem.Config{
				KeyBits:       512,
				Seed:          &seed,
				CryptoBackend: backend,
			}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			inputs, err := tr.WindowInputs(tr.Windows / 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindow(ctx, i, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: ring vs tree aggregation topology, full protocol stack ---

func BenchmarkAggregationTopologyWindow(b *testing.B) {
	for _, agg := range []string{pem.AggregationRing, pem.AggregationTree} {
		b.Run("agg="+agg, func(b *testing.B) {
			tr := benchTrace(b, 16, 720)
			seed := int64(19)
			m, err := pem.NewMarket(pem.Config{
				KeyBits:     512,
				Seed:        &seed,
				Aggregation: agg,
			}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			inputs, err := tr.WindowInputs(tr.Windows / 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindow(ctx, i, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 6(a): trading price over the day ---

func BenchmarkFig6aTradingPrice(b *testing.B) {
	tr := benchTrace(b, 200, 720)
	params := pem.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := pem.SimulateDay(tr, params)
		if err != nil {
			b.Fatal(err)
		}
		var inBand int
		for _, p := range ds.Price {
			if p >= params.PriceFloor && p <= params.PriceCeil {
				inBand++
			}
		}
		b.ReportMetric(float64(inBand), "windows-in-band")
	}
}

// --- Fig. 6(b): tracked-seller utility, k ∈ {20, 40} ---

func BenchmarkFig6bSellerUtility(b *testing.B) {
	tr := benchTrace(b, 200, 720)
	params := pem.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []float64{20, 40} {
			if _, _, err := pem.SellerUtilitySeries(tr, 0, k, params); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 6(c): buyer-coalition cost, with vs without PEM ---

func BenchmarkFig6cBuyerCost(b *testing.B) {
	for _, n := range []int{100, 200} {
		b.Run(fmt.Sprintf("homes=%d", n), func(b *testing.B) {
			tr := benchTrace(b, n, 720)
			params := pem.DefaultParams()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := pem.SimulateDay(tr, params)
				if err != nil {
					b.Fatal(err)
				}
				var pemCost, baseCost float64
				for w := 0; w < ds.Windows; w++ {
					pemCost += ds.BuyerCostPEM[w]
					baseCost += ds.BuyerCostBase[w]
				}
				if baseCost > 0 {
					b.ReportMetric(100*(1-pemCost/baseCost), "%savings")
				}
			}
		})
	}
}

// --- Fig. 6(d): interaction with the main grid ---

func BenchmarkFig6dGridInteraction(b *testing.B) {
	tr := benchTrace(b, 200, 720)
	params := pem.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := pem.SimulateDay(tr, params)
		if err != nil {
			b.Fatal(err)
		}
		var pemGrid, baseGrid float64
		for w := 0; w < ds.Windows; w++ {
			pemGrid += ds.GridPEM[w]
			baseGrid += ds.GridBase[w]
		}
		if baseGrid > 0 {
			b.ReportMetric(100*(1-pemGrid/baseGrid), "%reduction")
		}
	}
}

// --- Table I: average bandwidth per window by key size ---

func BenchmarkTable1Bandwidth(b *testing.B) {
	for _, bits := range []int{512, 1024, 2048} {
		b.Run(fmt.Sprintf("key=%d", bits), func(b *testing.B) {
			tr := benchTrace(b, 8, 720)
			seed := int64(9)
			m, err := pem.NewMarket(pem.Config{KeyBits: bits, Seed: &seed}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			inputs, err := tr.WindowInputs(tr.Windows / 2)
			if err != nil {
				b.Fatal(err)
			}
			start := m.Metrics().TotalBytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindow(ctx, i, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			total := m.Metrics().TotalBytes() - start
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "MB/window")
		})
	}
}

// --- Ablation: pre-encryption pool on vs off (DESIGN.md §6) ---

func BenchmarkAblationPreEncryption(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "pool=on"
		if !on {
			name = "pool=off"
		}
		b.Run(name, func(b *testing.B) {
			tr := benchTrace(b, 8, 720)
			seed := int64(11)
			pre := on
			m, err := pem.NewMarket(pem.Config{KeyBits: 2048, Seed: &seed, PreEncrypt: &pre}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			inputs, err := tr.WindowInputs(tr.Windows / 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindow(ctx, i, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: IKNP OT extension vs base OTs for comparator labels ---

func BenchmarkAblationOTExtension(b *testing.B) {
	for _, ext := range []bool{false, true} {
		name := "base-ot"
		if ext {
			name = "iknp"
		}
		b.Run(name, func(b *testing.B) {
			tr := benchTrace(b, 6, 720)
			seed := int64(13)
			m, err := pem.NewMarket(pem.Config{KeyBits: 512, Seed: &seed, UseOTExtension: ext}, tr.Agents())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			inputs, err := tr.WindowInputs(tr.Windows / 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.RunWindow(ctx, i, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: ring vs star aggregation critical path ---
//
// The PEM rings chain one ciphertext multiplication per member
// sequentially; a star topology would have every member encrypt in
// parallel and the sink multiply n ciphertexts. This micro-benchmark
// isolates the homomorphic-aggregation cost of both shapes for the
// Protocol 3 aggregate.

func BenchmarkAblationAggregationTopology(b *testing.B) {
	key, err := paillier.GenerateKey(mrand.New(mrand.NewSource(1)), 1024)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	rng := mrand.New(mrand.NewSource(2))
	cts := make([]*paillier.Ciphertext, n)
	for i := range cts {
		ct, err := key.EncryptInt64(rng, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}

	b.Run("ring-sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := cts[0]
			for j := 1; j < n; j++ {
				// Each hop folds one fresh encryption (simulating the
				// member's contribution) into the accumulator.
				var err error
				acc, err = key.Add(acc, cts[j])
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("star-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := cts[0]
			for j := 1; j < n; j++ {
				var err error
				acc, err = key.Add(acc, cts[j])
				if err != nil {
					b.Fatal(err)
				}
			}
			// The star sink additionally decrypts once; the ring's
			// decryption cost is identical, but the star pays n-1
			// network-parallel encryptions instead of a serial chain.
			if _, err := key.Decrypt(acc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: Paillier scalar-multiply cost in Protocol 4 ---

func BenchmarkAblationReciprocalScalarMul(b *testing.B) {
	key, err := paillier.GenerateKey(mrand.New(mrand.NewSource(3)), 2048)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := key.EncryptInt64(mrand.New(mrand.NewSource(4)), 123456789)
	if err != nil {
		b.Fatal(err)
	}
	exp := big.NewInt(1_000_000_007)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.ScalarMul(ct, exp); err != nil {
			b.Fatal(err)
		}
	}
}
