package pem

import (
	"context"
	"errors"
	"fmt"

	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/grid"
	"github.com/pem-go/pem/internal/market"
)

// This file is the public face of the sharded coalition grid: partition a
// large fleet into coalitions, run each coalition as its own private market
// over shared crypto and transport, and settle every coalition's residual
// supply/demand against the main grid. It mirrors the Market API: configure,
// construct, Run.

// Re-exported grid model types.
type (
	// Scenario names a dataset synthesis preset (sunny, overcast, …).
	Scenario = dataset.Scenario
	// FleetConfig controls heterogeneous fleet synthesis (GenerateFleet).
	FleetConfig = dataset.FleetConfig
	// CoalitionRun is one coalition's day outcome inside a GridResult.
	CoalitionRun = grid.CoalitionRun
	// GridResult is the outcome of a full grid run.
	GridResult = grid.Result
	// CoalitionResidual is one coalition's day-aggregate unmatched energy.
	CoalitionResidual = market.CoalitionResidual
	// CoalitionSettlement values one coalition's residuals at the grid tariff.
	CoalitionSettlement = market.CoalitionSettlement
	// GridSettlement is the fleet-wide residual settlement, including the
	// cross-coalition netting opportunity.
	GridSettlement = market.GridSettlement
	// TierSettlement is one hierarchy tier's netting outcome (GridConfig.Tiers).
	TierSettlement = market.TierSettlement
	// TieredSettlement is the recursive settlement of a tiered grid: one
	// netting outcome per tier plus the grid boundary.
	TieredSettlement = market.TieredSettlement
)

// Dataset scenario presets (see GenerateFleet).
const (
	ScenarioBase         = dataset.ScenarioBase
	ScenarioSunny        = dataset.ScenarioSunny
	ScenarioOvercast     = dataset.ScenarioOvercast
	ScenarioWinter       = dataset.ScenarioWinter
	ScenarioStorageHeavy = dataset.ScenarioStorageHeavy
)

// Partition strategies for GridConfig.Partition.
const (
	// PartitionFixed chunks the fleet in roster order (scenario-pure blocks
	// for a GenerateFleet trace).
	PartitionFixed = string(grid.StrategyFixed)
	// PartitionRandom shuffles with a seeded permutation before chunking.
	PartitionRandom = string(grid.StrategyRandom)
	// PartitionBalanced greedily mixes producers and consumers per
	// coalition using only public agent metadata.
	PartitionBalanced = string(grid.StrategyBalanced)
)

// GenerateFleet synthesizes a heterogeneous fleet trace: one scenario
// preset per coalition-sized block, all derived from a single seed. Feed it
// to NewGrid.
func GenerateFleet(cfg FleetConfig) (*Trace, error) {
	return dataset.GenerateFleet(cfg)
}

// ErrCoalitionSkipped marks coalitions never launched because an earlier
// coalition's failure stopped the grid.
var ErrCoalitionSkipped = grid.ErrCoalitionSkipped

// GridConfig configures a sharded coalition grid.
type GridConfig struct {
	// Market is the per-coalition market configuration: every coalition
	// runs a full private market under it (key size, pipeline depth,
	// crypto workers, aggregation topology, network emulation, seed). The
	// crypto worker pool is shared across coalitions, so CryptoWorkers
	// bounds the whole process. RecordLedger is ignored: each completed
	// coalition-day instead carries its own tamper-evident chain in
	// CoalitionRun.Ledger, committed on the settlement path.
	Market Config
	// Coalitions is how many coalitions to partition the fleet into
	// (required; every coalition needs at least two agents).
	Coalitions int
	// Partition selects the strategy: PartitionFixed (default),
	// PartitionRandom or PartitionBalanced.
	Partition string
	// PartitionSeed feeds PartitionRandom (defaults to *Market.Seed when
	// set). The partition is computed once, in NewGrid.
	PartitionSeed int64
	// MaxConcurrentCoalitions is the global in-flight budget: how many
	// coalition-days run concurrently (default: all). Outcomes are
	// bit-identical at any setting when Market.Seed is set.
	MaxConcurrentCoalitions int
	// MinCoalition is the smallest roster that still runs a private market
	// (default DefaultMinCoalition = 3). A smaller coalition is not an
	// error: it is folded into grid settlement — its stranded agents trade
	// at the grid tariff — and marked ErrCoalitionSkipped with
	// CoalitionRun.Folded set. Set to 2 to run every coalition the
	// partitioner can produce.
	MinCoalition int
	// Tiers makes settlement hierarchical — a grid of grids. Tiers[0]
	// consecutive coalitions form a district, Tiers[1] districts a region,
	// and so on; each tier nets its children's surplus against their
	// deficit before the unmatched remainder moves toward the grid tariff.
	// The result's Settlement becomes the hierarchy's grid boundary and
	// Tiers carries the per-tier outcomes. Empty means flat settlement,
	// bit-identical to a grid without hierarchy.
	Tiers []int
	// Store, when set, persists each coalition's outcome as it completes —
	// ledger blocks, key-material fingerprints and settlement aggregate,
	// under the coalition's scope ("c00", "c01", …) — in partition order,
	// before the streaming payload release. A store error aborts the run
	// like a sink error. Market.Store is ignored in a grid (coalitions
	// persist through this field instead).
	Store Store `json:"-"`
}

// Grid is a partitioned fleet ready to trade. Unlike Market (whose keys
// outlive windows), a Grid provisions each coalition's engine inside Run,
// so the zero-state struct holds only the plan: trace and partition.
type Grid struct {
	cfg   GridConfig
	trace *Trace
	parts [][]int
}

// NewGrid partitions the fleet trace into coalitions. The partition is
// deterministic given the config and visible via Partition before any
// protocol runs.
func NewGrid(cfg GridConfig, trace *Trace) (*Grid, error) {
	if trace == nil || len(trace.Homes) == 0 {
		return nil, errors.New("pem: grid needs a non-empty fleet trace")
	}
	if cfg.Coalitions <= 0 {
		return nil, errors.New("pem: GridConfig.Coalitions must be positive")
	}
	seed := cfg.PartitionSeed
	if seed == 0 && cfg.Market.Seed != nil {
		seed = *cfg.Market.Seed
	}
	parts, err := grid.Partition(grid.Strategy(cfg.Partition), trace.Homes, cfg.Coalitions, seed)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	return &Grid{cfg: cfg, trace: trace, parts: parts}, nil
}

// Partition returns the coalition membership as agent IDs, in coalition
// order. Membership derives only from public agent metadata.
func (g *Grid) Partition() [][]string {
	out := make([][]string, len(g.parts))
	for i, part := range g.parts {
		out[i] = make([]string, len(part))
		for j, h := range part {
			out[i][j] = g.trace.Homes[h].ID
		}
	}
	return out
}

// Run executes one trading day for every coalition concurrently over shared
// infrastructure and settles the residuals. A failing coalition fails alone:
// its siblings in flight drain normally, unlaunched coalitions are skipped,
// and the returned GridResult carries per-coalition outcomes (with Err set
// on the failed and skipped ones) alongside the earliest failure, so a
// partial day is still observable.
func (g *Grid) Run(ctx context.Context) (*GridResult, error) {
	res, err := grid.Run(ctx, g.gridConfig(), g.trace, g.parts)
	if err != nil {
		return res, fmt.Errorf("pem: %w", err)
	}
	return res, nil
}

// Stream executes the same grid day as Run but delivers each coalition's
// full outcome to sink in partition order as soon as it (and every
// coalition before it) completes, then releases the coalition's heavy
// payload. The returned GridResult is the fold — settlement, tiers,
// traffic, throughput — with Coalitions nil, so memory stays bounded by
// the coalitions in flight rather than the fleet size. The *CoalitionRun
// is valid only during the sink call; a sink error cancels the in-flight
// coalitions and aborts the run. With Market.Seed set, a Stream is
// bit-identical to Run at any sink consumption speed.
func (g *Grid) Stream(ctx context.Context, sink func(*CoalitionRun) error) (*GridResult, error) {
	if sink == nil {
		return nil, errors.New("pem: Stream needs a sink (use Run)")
	}
	res, err := grid.Stream(ctx, g.gridConfig(), g.trace, g.parts, sink)
	if err != nil {
		return res, fmt.Errorf("pem: %w", err)
	}
	return res, nil
}

// gridConfig maps the public grid configuration onto the supervisor's.
func (g *Grid) gridConfig() grid.Config {
	return grid.Config{
		Engine:        g.cfg.Market.coreConfig(),
		MaxConcurrent: g.cfg.MaxConcurrentCoalitions,
		MinCoalition:  g.cfg.MinCoalition,
		Tiers:         g.cfg.Tiers,
		Store:         g.cfg.Store,
	}
}
