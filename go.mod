module github.com/pem-go/pem

go 1.24
