package pem_test

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/pem-go/pem"
)

func testLiveGrid(t *testing.T, conc int) *pem.LiveGrid {
	t.Helper()
	lg, err := pem.NewLiveGrid(pem.LiveGridConfig{
		Market:                  pem.Config{KeyBits: 256, Seed: seedPtr(41)},
		Coalitions:              2,
		Partition:               pem.PartitionBalanced,
		MaxConcurrentCoalitions: conc,
		Epochs:                  3,
		Churn:                   pem.ChurnConfig{JoinRate: 0.25, DepartRate: 0.15, FailRate: 0.1},
	}, pem.FleetConfig{
		Coalitions:        2,
		HomesPerCoalition: 4,
		Windows:           2,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func TestLiveGridPublicAPI(t *testing.T) {
	lg := testLiveGrid(t, 0)

	// The evolution is inspectable before any protocol runs: three epochs
	// of rosters, and every churn event refers to a real roster change.
	rosters := lg.Rosters()
	if len(rosters) != 3 {
		t.Fatalf("%d rosters, want 3", len(rosters))
	}
	onRoster := func(e int, id string) bool {
		for _, r := range rosters[e] {
			if r == id {
				return true
			}
		}
		return false
	}
	for _, ev := range lg.Events() {
		switch ev.Kind {
		case pem.ChurnJoin:
			if !onRoster(ev.Epoch, ev.ID) {
				t.Errorf("join %s missing from epoch %d roster", ev.ID, ev.Epoch)
			}
		case pem.ChurnDepart, pem.ChurnFail:
			if !onRoster(ev.Epoch-1, ev.ID) || onRoster(ev.Epoch, ev.ID) {
				t.Errorf("leaver %s roster transition broken at epoch %d", ev.ID, ev.Epoch)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	res, err := lg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 || res.Windows == 0 {
		t.Fatalf("run shape: %d epochs, %d windows", len(res.Epochs), res.Windows)
	}
	if math.Abs(res.EnergyImbalanceKWh) > 1e-9 || math.Abs(res.PaymentImbalanceCents) > 1e-6 {
		t.Errorf("conservation violated: energy %v kWh, payments %v cents",
			res.EnergyImbalanceKWh, res.PaymentImbalanceCents)
	}
	if res.Rekey <= 0 || res.WindowsPerSec <= 0 {
		t.Errorf("throughput accounting missing: rekey %v, windows/sec %v", res.Rekey, res.WindowsPerSec)
	}

	// Every agent that ever traded has a position; leavers are frozen.
	byID := make(map[string]pem.AgentPosition, len(res.Positions))
	for _, p := range res.Positions {
		byID[p.ID] = p
	}
	for _, ev := range lg.Events() {
		p, ok := byID[ev.ID]
		if !ok {
			t.Errorf("no position for churned agent %s", ev.ID)
			continue
		}
		if ev.Kind == pem.ChurnDepart || ev.Kind == pem.ChurnFail {
			if p.Active() || p.ExitEpoch != ev.Epoch-1 {
				t.Errorf("leaver %s not frozen at epoch %d: %+v", ev.ID, ev.Epoch-1, p)
			}
		}
	}
}

// TestLiveGridDeterministicAcrossConcurrency: the public API inherits the
// epoch layer's guarantee — bit-identical positions and epoch outcomes at
// any coalition concurrency.
func TestLiveGridDeterministicAcrossConcurrency(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	a, err := testLiveGrid(t, 1).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testLiveGrid(t, 4).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Positions) != len(b.Positions) {
		t.Fatalf("position counts diverge: %d vs %d", len(a.Positions), len(b.Positions))
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %s diverged:\n%+v\nvs\n%+v", a.Positions[i].ID, a.Positions[i], b.Positions[i])
		}
	}
	for e := range a.Epochs {
		if a.Epochs[e].Windows != b.Epochs[e].Windows || a.Epochs[e].Bytes != b.Epochs[e].Bytes {
			t.Fatalf("epoch %d diverged across concurrency", e)
		}
	}
}

func TestLiveGridRejectsBadConfig(t *testing.T) {
	fleet := pem.FleetConfig{Coalitions: 1, HomesPerCoalition: 4, Windows: 1, Seed: 1}
	if _, err := pem.NewLiveGrid(pem.LiveGridConfig{Epochs: 2, Coalitions: 0}, fleet); err == nil {
		t.Error("accepted zero coalitions")
	}
	if _, err := pem.NewLiveGrid(pem.LiveGridConfig{Epochs: 0, Coalitions: 2}, fleet); err == nil {
		t.Error("accepted zero epochs")
	}
	bad := pem.LiveGridConfig{Epochs: 2, Coalitions: 2, Churn: pem.ChurnConfig{DepartRate: 0.7, FailRate: 0.5}}
	if _, err := pem.NewLiveGrid(bad, fleet); err == nil {
		t.Error("accepted churn rates with no survivors")
	}
	// Statically-bad grid config fails at construction, not at Run.
	if _, err := pem.NewLiveGrid(pem.LiveGridConfig{Epochs: 2, Coalitions: 2, Partition: "zodiac"}, fleet); err == nil {
		t.Error("accepted unknown partition strategy")
	}
	neg := pem.LiveGridConfig{Epochs: 2, Coalitions: 2, MaxConcurrentCoalitions: -1}
	if _, err := pem.NewLiveGrid(neg, fleet); err == nil {
		t.Error("accepted negative coalition budget")
	}
}

// TestLiveGridStreamPublicAPI: the live streaming variant delivers each
// epoch in order with its settlement, retains no epochs on the result, and
// folds to the same positions as the batch Run; heavy per-coalition
// payloads are released by default and kept under RetainCoalitionResults.
func TestLiveGridStreamPublicAPI(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	batch, err := testLiveGrid(t, 0).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Default: heavy payloads are released once each epoch settles.
	for _, er := range batch.Epochs {
		for _, cr := range er.Coalitions {
			if cr.Results != nil || cr.Ledger != nil || cr.Flows != nil {
				t.Fatalf("%s retained heavy payload by default", cr.Name)
			}
		}
	}

	var epochs []int
	streamed, err := testLiveGrid(t, 0).Stream(ctx, func(er *pem.EpochResult) error {
		if er.Settlement == nil {
			t.Errorf("epoch %d streamed without settlement", er.Epoch)
		}
		epochs = append(epochs, er.Epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0] != 0 || epochs[2] != 2 {
		t.Fatalf("stream epochs %v, want [0 1 2]", epochs)
	}
	if streamed.Epochs != nil {
		t.Error("streamed live result retained epochs")
	}
	if len(streamed.Positions) != len(batch.Positions) {
		t.Fatal("position counts diverged")
	}
	for i := range streamed.Positions {
		if streamed.Positions[i] != batch.Positions[i] {
			t.Errorf("position %s diverged", streamed.Positions[i].ID)
		}
	}
	if _, err := testLiveGrid(t, 0).Stream(ctx, nil); err == nil {
		t.Error("nil sink accepted")
	}

	// Opt-in retention keeps the audit payloads.
	lg, err := pem.NewLiveGrid(pem.LiveGridConfig{
		Market:                 pem.Config{KeyBits: 256, Seed: seedPtr(41)},
		Coalitions:             2,
		Partition:              pem.PartitionBalanced,
		Epochs:                 2,
		RetainCoalitionResults: true,
		Churn:                  pem.ChurnConfig{JoinRate: 0.2},
	}, pem.FleetConfig{Coalitions: 2, HomesPerCoalition: 3, Windows: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	retained, err := lg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range retained.Epochs {
		for _, cr := range er.Coalitions {
			if cr.Err == nil && (cr.Results == nil || cr.Ledger == nil) {
				t.Errorf("%s lost its payload despite RetainCoalitionResults", cr.Name)
			}
		}
	}
}
