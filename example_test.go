package pem_test

import (
	"context"
	"fmt"
	"log"

	"github.com/pem-go/pem"
)

// ExampleClear shows the plaintext reference clearing: two sellers and a
// buyer in a general market.
func ExampleClear() {
	agents := []pem.Agent{
		{ID: "roof-a", K: 85, Epsilon: 0.9},
		{ID: "roof-b", K: 85, Epsilon: 0.9},
		{ID: "flat-c", K: 85, Epsilon: 0.9},
	}
	inputs := []pem.WindowInput{
		{Generation: 0.30, Load: 0.10}, // +0.20 kWh surplus
		{Generation: 0.20, Load: 0.10}, // +0.10 kWh surplus
		{Generation: 0.00, Load: 0.50}, // −0.50 kWh deficit
	}
	clearing, err := pem.Clear(agents, inputs, pem.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s market at %.2f cents/kWh\n", clearing.Kind, clearing.Price)
	for _, tr := range clearing.Trades {
		fmt.Printf("%s -> %s: %.2f kWh\n", tr.Seller, tr.Buyer, tr.Energy)
	}
	// Output:
	// general market at 90.33 cents/kWh
	// roof-a -> flat-c: 0.20 kWh
	// roof-b -> flat-c: 0.10 kWh
}

// ExampleNewMarket runs one fully private trading window.
func ExampleNewMarket() {
	agents := []pem.Agent{
		{ID: "seller", K: 85, Epsilon: 0.9},
		{ID: "buyer", K: 75, Epsilon: 0.85},
	}
	seed := int64(7) // deterministic for the example; omit in production
	m, err := pem.NewMarket(pem.Config{KeyBits: 256, Seed: &seed}, agents)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	res, err := m.RunWindow(context.Background(), 0, []pem.WindowInput{
		{Generation: 0.40, Load: 0.10},
		{Generation: 0.00, Load: 0.60},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s market, %d trade(s) at %.2f cents/kWh\n",
		res.Kind, len(res.Trades), res.Price)
	// Output:
	// general market, 1 trade(s) at 90.00 cents/kWh
}

// ExampleGenerateTrace synthesizes a day of smart-home data.
func ExampleGenerateTrace() {
	tr, err := pem.GenerateTrace(pem.TraceConfig{Homes: 3, Windows: 720, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d homes x %d one-minute windows\n", len(tr.Homes), tr.Windows)
	// Output:
	// 3 homes x 720 one-minute windows
}

// ExampleMarket_RunWindows pipelines several private trading windows.
func ExampleMarket_RunWindows() {
	agents := []pem.Agent{
		{ID: "seller", K: 85, Epsilon: 0.9},
		{ID: "buyer", K: 75, Epsilon: 0.85},
	}
	seed := int64(7) // deterministic for the example; omit in production
	m, err := pem.NewMarket(pem.Config{
		KeyBits:            256,
		Seed:               &seed,
		MaxInflightWindows: 4, // up to four windows in flight
	}, agents)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// One input slice per window; windows are numbered by index. The
	// outcomes are identical to running the windows one at a time.
	day := [][]pem.WindowInput{
		{{Generation: 0.40, Load: 0.10}, {Generation: 0.00, Load: 0.60}},
		{{Generation: 0.35, Load: 0.10}, {Generation: 0.00, Load: 0.55}},
		{{Generation: 0.30, Load: 0.10}, {Generation: 0.00, Load: 0.50}},
		{{Generation: 0.25, Load: 0.10}, {Generation: 0.00, Load: 0.45}},
	}
	results, err := m.RunWindows(context.Background(), day)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("window %d: %d trade(s) at %.2f cents/kWh\n",
			res.Window, len(res.Trades), res.Price)
	}
	// Output:
	// window 0: 1 trade(s) at 90.00 cents/kWh
	// window 1: 1 trade(s) at 90.00 cents/kWh
	// window 2: 1 trade(s) at 90.00 cents/kWh
	// window 3: 1 trade(s) at 90.33 cents/kWh
}
