package pem

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Crash recovery for durable live grids. A LiveGridConfig with a Store
// embeds its own (and the fleet's) configuration in every epoch checkpoint,
// so a killed simulation needs nothing but the WAL file to come back: Resume
// reopens the log, recovers its state (truncating any torn tail), rebuilds
// the exact same LiveGrid from the checkpointed configuration and restarts
// it after the last completed epoch. Because every per-epoch seed derives
// independently from the base seeds, the resumed run replays the remaining
// epochs bit-identically to the uninterrupted one.

// resumeMeta is the configuration blob embedded in each checkpoint: enough
// to rebuild the LiveGrid (the evolution is seed-derived, so the fleet
// config regenerates the identical churn history). Store fields are tagged
// out of the encoding; everything else round-trips exactly.
type resumeMeta struct {
	// Live is the simulation's public configuration.
	Live LiveGridConfig
	// Fleet is the base-fleet synthesis configuration.
	Fleet FleetConfig
}

// Resume reopens the WAL at path and rebuilds the live-grid simulation it
// was checkpointing, positioned to continue after the last completed epoch:
// the position book restores bit-exactly from the checkpoint and the next
// Run or Stream call replays only the remaining epochs — bit-identically to
// an uninterrupted run when the original configuration was seeded. The
// checkpoint's configuration hash and roster are cross-checked against the
// rebuilt simulation before anything runs. The returned grid owns the
// reopened store; release it with Close after the resumed run.
func Resume(path string) (*LiveGrid, error) {
	wal, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	lg, err := resumeFrom(wal)
	if err != nil {
		wal.Close()
		return nil, err
	}
	return lg, nil
}

// resumeFrom rebuilds the simulation from an opened store's newest
// checkpoint; on error the caller closes the store.
func resumeFrom(wal *WALStore) (*LiveGrid, error) {
	cp, ok, err := wal.LastCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("pem: resume: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("pem: resume: %s has no checkpoint (no epoch completed before the crash)", wal.Path())
	}
	if len(cp.Config) == 0 {
		return nil, fmt.Errorf("pem: resume: checkpoint carries no configuration")
	}
	sum := sha256.Sum256(cp.Config)
	if got := hex.EncodeToString(sum[:]); got != cp.ConfigHash {
		return nil, fmt.Errorf("pem: resume: checkpoint configuration hash mismatch (have %s, recorded %s)", got, cp.ConfigHash)
	}
	var meta resumeMeta
	if err := json.Unmarshal(cp.Config, &meta); err != nil {
		return nil, fmt.Errorf("pem: resume: decode checkpoint configuration: %w", err)
	}
	meta.Live.Store = wal
	lg, err := NewLiveGrid(meta.Live, meta.Fleet)
	if err != nil {
		return nil, fmt.Errorf("pem: resume: rebuild simulation: %w", err)
	}
	// The evolution is regenerated from the fleet seed; cross-check the
	// checkpointed roster against the rebuilt epoch's before trusting it to
	// replay the same history.
	rosters := lg.Rosters()
	if cp.Epoch < 0 || cp.Epoch >= len(rosters) {
		return nil, fmt.Errorf("pem: resume: checkpoint epoch %d outside the %d-epoch simulation", cp.Epoch, len(rosters))
	}
	if err := sameRoster(rosters[cp.Epoch], cp.Roster); err != nil {
		return nil, fmt.Errorf("pem: resume: epoch %d roster mismatch: %w", cp.Epoch, err)
	}
	lg.cfg.Resume = &cp
	lg.owned = wal
	return lg, nil
}

// sameRoster reports how two rosters differ (nil when identical in order).
func sameRoster(rebuilt, recorded []string) error {
	if len(rebuilt) != len(recorded) {
		return fmt.Errorf("rebuilt %d agents, checkpoint recorded %d", len(rebuilt), len(recorded))
	}
	for i := range rebuilt {
		if rebuilt[i] != recorded[i] {
			return fmt.Errorf("agent %d: rebuilt %q, checkpoint recorded %q", i, rebuilt[i], recorded[i])
		}
	}
	return nil
}
