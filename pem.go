// Package pem is the public API of the Private Energy Market — a Go
// implementation of "Privacy Preserving Distributed Energy Trading"
// (Xie, Wang, Hong, Thai; ICDCS 2020).
//
// PEM lets a fleet of agents (smart homes, microgrids) trade surplus
// energy with each other instead of only with the main grid, while keeping
// each agent's generation, load, battery schedule and utility preference
// private. Price discovery is a buyer-led Stackelberg game with a closed-
// form equilibrium; all computations run under Paillier homomorphic
// encryption and garbled-circuit secure comparison, with no trusted third
// party.
//
// # Quick start
//
//	agents := []pem.Agent{
//		{ID: "solar-roof", K: 85, Epsilon: 0.9},
//		{ID: "townhouse", K: 75, Epsilon: 0.85},
//		{ID: "ev-garage", K: 95, Epsilon: 0.9},
//	}
//	m, err := pem.NewMarket(pem.Config{KeyBits: 1024}, agents)
//	if err != nil { ... }
//	defer m.Close()
//
//	res, err := m.RunWindow(ctx, 0, []pem.WindowInput{
//		{Generation: 0.40, Load: 0.10}, // surplus: sells
//		{Generation: 0.00, Load: 0.25}, // deficit: buys
//		{Generation: 0.05, Load: 0.30}, // deficit: buys
//	})
//
// res.Price is the private Stackelberg price, res.Trades the pairwise
// allocations. See examples/ for full programs and DESIGN.md for the
// architecture.
package pem

import (
	"context"
	"errors"
	"fmt"

	"github.com/pem-go/pem/internal/core"
	"github.com/pem-go/pem/internal/dataset"
	"github.com/pem-go/pem/internal/ledger"
	"github.com/pem-go/pem/internal/market"
	"github.com/pem-go/pem/internal/netem"
	"github.com/pem-go/pem/internal/paillier"
	"github.com/pem-go/pem/internal/transport"
)

// Re-exported model types. These aliases are the supported public names;
// the internal packages are not importable by downstream modules.
type (
	// Agent is one market participant (smart home / microgrid).
	Agent = market.Agent
	// WindowInput is an agent's private data for one trading window.
	WindowInput = market.WindowInput
	// Params are the public market prices and bounds.
	Params = market.Params
	// Trade is one pairwise transaction.
	Trade = market.Trade
	// Clearing is a plaintext market outcome (reference implementation).
	Clearing = market.Clearing
	// Kind distinguishes general and extreme markets.
	Kind = market.Kind
	// Role classifies an agent within a window.
	Role = market.Role
	// WindowResult is the public outcome of a private trading window.
	WindowResult = core.WindowResult
	// Ledger is the hash-chained trade log.
	Ledger = ledger.Ledger
	// TradeRecord is a ledger entry.
	TradeRecord = ledger.TradeRecord
	// Trace is a day of per-home generation/load/battery data.
	Trace = dataset.Trace
	// TraceConfig controls synthetic trace generation.
	TraceConfig = dataset.Config
	// PoolStats is a snapshot of the pre-encryption pool health counters.
	PoolStats = paillier.PoolStats
)

// Re-exported enum values.
const (
	GeneralMarket = market.GeneralMarket
	ExtremeMarket = market.ExtremeMarket
	RoleSeller    = market.RoleSeller
	RoleBuyer     = market.RoleBuyer
	RoleOff       = market.RoleOff
)

// DefaultParams returns the paper's evaluation prices: grid feed-in 80,
// retail 120, PEM band [90, 110] cents/kWh.
func DefaultParams() Params { return market.DefaultParams() }

// Config configures a private market.
type Config struct {
	// KeyBits is the Paillier modulus size: 512, 1024 or 2048 in the
	// paper's sweep (default 1024).
	KeyBits int
	// Params are the market prices (DefaultParams if zero).
	Params Params
	// PreEncrypt precomputes Paillier blinding factors in idle time
	// (default true, matching the paper's deployment).
	PreEncrypt *bool
	// UseOTExtension moves comparator label transfer to IKNP OT extension.
	UseOTExtension bool
	// GRR3 enables garbled row reduction in the secure comparator,
	// shrinking its tables by 25% on the wire.
	GRR3 bool
	// Seed makes the run deterministic (tests/benchmarks only).
	Seed *int64
	// RecordLedger appends every window's trades to a hash-chained ledger
	// (the paper's blockchain-deployment discussion). Default true.
	RecordLedger *bool
	// MaxInflightWindows is how many trading windows RunWindows, RunDay and
	// StreamDay keep in flight concurrently (default 1: strictly
	// sequential, the paper's deployment). Each window is an independent
	// protocol instance with its own transport tag namespace and
	// randomness stream, so pipelining never changes outcomes — a seeded
	// market produces bit-identical results at any depth.
	MaxInflightWindows int
	// CryptoWorkers sizes the shared worker pool for intra-window parallel
	// crypto — the chosen counterparty's batched decryption of Protocol 4's
	// masked ciphertexts (default: runtime.NumCPU()). The pool is shared
	// fleet-wide, so total crypto parallelism stays bounded no matter how
	// many windows are in flight. Outcomes are bit-identical at any worker
	// count.
	CryptoWorkers int
	// Aggregation selects the encrypted-sum topology for the coalition
	// aggregations of Protocols 2 and 4: AggregationRing (default, the
	// paper's O(n)-latency sequential chain) or AggregationTree (log-depth
	// binary reduction with the same leakage profile).
	Aggregation string
	// CryptoBackend selects the cryptographic realization of the window
	// protocols: BackendPaillier (default — the paper's construction,
	// Paillier everywhere) or BackendHybrid, which computes the coalition
	// aggregations of Protocols 2–4 over pairwise seeded additive masking
	// with fixed-width frames and keeps Paillier only for Protocol 4's
	// masked-reciprocal ratio step. Both backends produce bit-identical
	// prices, allocations and ledger chains; hybrid trades the stronger
	// per-message Paillier hiding for one-time pad masking provisioned by
	// the market (see DESIGN.md §12 for the threat-model comparison).
	CryptoBackend string
	// Network selects a deterministic network-emulation topology for the
	// market's transport: NetworkLAN, NetworkMetro, NetworkWAN,
	// NetworkCellular or NetworkLossy. When set, every protocol message is
	// priced against seeded per-link latency, jitter, bandwidth and loss
	// models on a virtual clock — runs stay as fast as the in-memory bus
	// (no wall-clock sleeps) and bit-identical under a fixed Seed — and
	// each WindowResult reports its critical-path VirtualLatency and
	// protocol Rounds over the emulated links. Empty (the default) disables
	// emulation.
	Network string
	// Store, when set, persists the market's committed artifacts as they
	// happen: the roster's key-material fingerprints at provisioning and
	// every ledger block at commit, under scope "market". A store error
	// fails the operation that hit it — durability failures must not pass
	// silently. Nil (the default) keeps the market purely in-memory. In a
	// grid configuration this field is ignored (like RecordLedger); set
	// GridConfig.Store or LiveGridConfig.Store instead.
	Store Store `json:"-"`
}

// Aggregation topologies for Config.Aggregation.
const (
	AggregationRing = core.AggregationRing
	AggregationTree = core.AggregationTree
)

// Crypto backends for Config.CryptoBackend.
const (
	// BackendPaillier runs every protocol step under Paillier homomorphic
	// encryption with garbled-circuit comparison — the paper's construction.
	BackendPaillier = core.BackendPaillier
	// BackendHybrid replaces the Protocol 2/3 aggregations and comparison
	// with seeded additive masking over fixed-width integer frames, keeping
	// Paillier for Protocol 4's ratio step. Outcomes are bit-identical to
	// BackendPaillier; per-window cost drops by an order of magnitude.
	BackendHybrid = core.BackendHybrid
)

// Network-emulation topology presets for Config.Network.
const (
	// NetworkLAN emulates a switched local network (100µs links, gigabit
	// bandwidth) — the near-ideal baseline.
	NetworkLAN = netem.TopologyLAN
	// NetworkMetro emulates a metropolitan utility network (5ms links,
	// 200 Mbit/s).
	NetworkMetro = netem.TopologyMetro
	// NetworkWAN emulates a cross-region deployment (40ms links, 50 Mbit/s,
	// light loss).
	NetworkWAN = netem.TopologyWAN
	// NetworkCellular emulates smart meters on a cellular uplink (80ms
	// high-jitter links, 20 Mbit/s).
	NetworkCellular = netem.TopologyCellular
	// NetworkLossy emulates a degraded long-haul path (40ms links, 3% loss;
	// retransmission cost dominates).
	NetworkLossy = netem.TopologyLossy
)

// NetworkPresets lists the Config.Network topology presets in stable order.
func NetworkPresets() []string { return netem.Presets() }

// Market is a running private energy market.
type Market struct {
	cfg    Config
	engine *core.Engine
	agents []Agent
	ledger *Ledger
}

// coreConfig lowers the public config to the engine's. It is shared by
// NewMarket and the coalition grid (which runs one engine per coalition
// under this same configuration).
func (cfg Config) coreConfig() core.Config {
	return core.Config{
		KeyBits:            cfg.KeyBits,
		Params:             cfg.Params,
		UseOTExtension:     cfg.UseOTExtension,
		GRR3:               cfg.GRR3,
		PreEncrypt:         cfg.PreEncrypt == nil || *cfg.PreEncrypt,
		Seed:               cfg.Seed,
		MaxInflightWindows: cfg.MaxInflightWindows,
		CryptoWorkers:      cfg.CryptoWorkers,
		Aggregation:        cfg.Aggregation,
		CryptoBackend:      cfg.CryptoBackend,
		Network:            cfg.Network,
	}
}

// NewMarket provisions keys and transport for the agents and returns a
// ready market. Call Close when done.
func NewMarket(cfg Config, agents []Agent) (*Market, error) {
	if len(agents) == 0 {
		return nil, errors.New("pem: no agents")
	}
	eng, err := core.NewEngine(cfg.coreConfig(), agents)
	if err != nil {
		return nil, fmt.Errorf("pem: %w", err)
	}
	m := &Market{cfg: cfg, engine: eng, agents: append([]Agent(nil), agents...)}
	if cfg.RecordLedger == nil || *cfg.RecordLedger {
		m.ledger = ledger.New()
	}
	if cfg.Store != nil {
		for _, fp := range eng.KeyFingerprints() {
			rec := KeyRecord{Scope: marketScope, Party: fp.Party, Fingerprint: append([]byte(nil), fp.Digest[:]...)}
			if err := cfg.Store.PutKeyMaterial(rec); err != nil {
				eng.Close()
				return nil, fmt.Errorf("pem: store key material: %w", err)
			}
		}
		if m.ledger != nil {
			// Persist the genesis block up front so the stored chain verifies
			// end-to-end (FromBlocks) even before the first window commits.
			genesis, err := m.ledger.Block(0)
			if err == nil {
				err = cfg.Store.AppendBlock(marketScope, genesis)
			}
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("pem: store genesis: %w", err)
			}
		}
	}
	return m, nil
}

// marketScope is the store scope a solo market persists under; grids use
// per-coalition scopes instead.
const marketScope = "market"

// Agents returns the roster.
func (m *Market) Agents() []Agent {
	return append([]Agent(nil), m.agents...)
}

// Ledger returns the trade ledger (nil if disabled).
func (m *Market) Ledger() *Ledger { return m.ledger }

// Metrics exposes transport byte accounting (Table I).
func (m *Market) Metrics() *transport.Metrics { return m.engine.Metrics() }

// PoolStats aggregates the pre-encryption pool health counters across the
// fleet (all zeros when PreEncrypt is disabled). A growing Misses count
// means critical-path encryptions are paying the full exponentiation
// inline; Retries counts transient randomness failures the background
// workers recovered from.
func (m *Market) PoolStats() PoolStats { return m.engine.PoolStats() }

// Close releases background resources. Closing while windows are in
// flight drains them first: running windows complete normally, windows
// scheduled afterwards fail with ErrMarketClosed.
func (m *Market) Close() { m.engine.Close() }

// ErrMarketClosed is returned for windows scheduled after Close.
var ErrMarketClosed = core.ErrEngineClosed

// WindowError tags a window-execution failure with its window number;
// window failures returned by RunWindow, RunWindows, RunDay and StreamDay
// unwrap to it via errors.As. Errors that are not one window's failure —
// context cancellation before launch, ledger-append failures, a StreamDay
// sink error — are returned as-is.
type WindowError = core.WindowError

// RunWindow executes one private trading window (Protocol 1) — the
// depth-1 special case of the pipelined scheduler behind RunWindows.
func (m *Market) RunWindow(ctx context.Context, window int, inputs []WindowInput) (*WindowResult, error) {
	results, err := m.streamWindows(ctx, []core.WindowJob{{Window: window, Inputs: inputs}}, nil)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunWindows executes one private trading window per element of inputs,
// numbered by slice index, keeping up to Config.MaxInflightWindows windows
// in flight concurrently. results[w] is window w's outcome; outcomes and
// ledger order are identical to running the windows sequentially. On
// failure the scheduler stops launching new windows, drains the in-flight
// ones (a failing window cancels only itself) and returns the earliest
// failed window's error; completed windows keep their slots in results.
func (m *Market) RunWindows(ctx context.Context, inputs [][]WindowInput) ([]*WindowResult, error) {
	jobs := make([]core.WindowJob, len(inputs))
	for w, in := range inputs {
		jobs[w] = core.WindowJob{Window: w, Inputs: in}
	}
	return m.streamWindows(ctx, jobs, nil)
}

// streamWindows runs jobs through the engine's scheduler, appending every
// completed window's trades to the ledger in strict window order — and,
// with Config.Store set, persisting each committed block before the result
// reaches the sink — so ledger, store and sink always agree on order.
func (m *Market) streamWindows(ctx context.Context, jobs []core.WindowJob, sink func(*WindowResult) error) ([]*WindowResult, error) {
	return m.engine.StreamWindows(ctx, jobs, func(res *WindowResult) error {
		if m.ledger != nil {
			records := ledger.RecordsFromTrades(res.Trades)
			blk, err := m.ledger.Append(res.Window, res.Price, records)
			if err != nil {
				return fmt.Errorf("pem: ledger append: %w", err)
			}
			if m.cfg.Store != nil {
				if err := m.cfg.Store.AppendBlock(marketScope, blk); err != nil {
					return fmt.Errorf("pem: store block: %w", err)
				}
			}
		}
		if sink != nil {
			return sink(res)
		}
		return nil
	})
}

// Clear computes the plaintext reference outcome for one window — what the
// market would decide with full information. The private protocols must
// (and the tests assert they do) reproduce it to fixed-point precision.
func Clear(agents []Agent, inputs []WindowInput, params Params) (*Clearing, error) {
	return market.Clear(agents, inputs, params)
}

// BaselineClear computes the paper's "without PEM" benchmark: all agents
// trade only with the main grid.
func BaselineClear(agents []Agent, inputs []WindowInput, params Params) (*Clearing, error) {
	return market.BaselineClear(agents, inputs, params)
}

// GenerateTrace synthesizes a day of smart-home data (see TraceConfig).
func GenerateTrace(cfg TraceConfig) (*Trace, error) {
	return dataset.Generate(cfg)
}
